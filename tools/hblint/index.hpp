// hblint indexing layer: per-file symbol tables and the repo-wide view the
// cross-file rules run against.
//
// `build_file_index` runs the lexer over one file and extracts everything
// the rule engine needs positionally:
//   * quoted #include targets (the subsystem include graph),
//   * named function definitions (name, parameter range, body range),
//   * observer-parameter signatures: every function whose parameter list
//     mentions `obs::Sink*` or `obs::ProgressBoard*`, with per-parameter
//     default information and declaration/definition classification,
//   * declared unordered_map/unordered_set variable names,
//   * declared stream variables (std::ostream&/std::ofstream/FILE*) and
//     the names of functions in this file that write to streams,
//   * suppression comments and fixture pragmas.
//
// `RepoIndex` is just the collection of file indexes plus the lookups that
// only make sense across files (header signatures by function name, the
// repo-wide set of stream-writing functions).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "hblint/hblint.hpp"

namespace hblint {

/// One quoted include directive: `#include "graph/graph.hpp"` yields
/// target "graph/graph.hpp".
struct IncludeEdge {
  std::string target;
  std::size_t line = 0;
};

/// A named function with a body (token-level heuristic: identifier,
/// balanced parameter list, then `{`). Offsets index the blanked text;
/// body range excludes the braces.
struct FunctionDef {
  std::string name;
  std::size_t line = 0;
  std::size_t params_begin = 0, params_end = 0;
  std::size_t body_begin = 0, body_end = 0;
};

enum class ObserverKind { kSink, kProgressBoard };

struct ObserverParam {
  ObserverKind kind = ObserverKind::kSink;
  bool has_default = false;
  std::size_t pos = 0;  // offset of the `obs::` token
};

/// A function signature that carries at least one observer parameter.
struct ObserverSig {
  std::string name;
  std::size_t line = 0;
  bool is_definition = false;  // parameter list followed by `{`
  std::vector<ObserverParam> observers;  // in parameter order
};

/// Per-line and per-file `hblint: allow(...)` suppressions.
struct Suppressions {
  std::vector<std::pair<std::string, std::size_t>> line_allows;
  std::vector<std::string> file_allows;

  [[nodiscard]] bool allows(const std::string& rule, std::size_t line) const;
};

struct FileIndex {
  std::string path;  // as given to the linter
  std::string rel;   // repo-relative (src/..., tools/..., tests/...)
  Scope scope = Scope::kLibrary;
  bool is_header = false;
  bool in_obs = false;
  std::string subsystem;  // "core", "sim", ... when rel is under src/

  std::string blanked;
  std::vector<std::string> lines;  // blanked, per line
  Suppressions suppressions;

  std::vector<IncludeEdge> includes;
  std::vector<FunctionDef> functions;
  std::vector<ObserverSig> observer_sigs;
  std::vector<std::string> unordered_names;   // sorted, unique
  std::vector<std::string> stream_vars;       // sorted, unique
  std::vector<std::string> stream_writers;    // function names, sorted
};

/// Normalizes an absolute or relative path to its repo-relative form by
/// cutting at the last `src/`, `tools/`, or `tests/` component; returns the
/// input unchanged when none is present.
[[nodiscard]] std::string repo_relative(const std::string& path);

/// Subsystem of a repo-relative path (`src/<sub>/...` -> "<sub>"; empty
/// otherwise).
[[nodiscard]] std::string subsystem_of(const std::string& rel);

/// Builds the full per-file index. Honors the fixture pragmas
/// `hblint-scope: src|obs|tools|tests` and `hblint-path: <virtual path>`
/// (the latter substitutes the path used for scope/subsystem decisions so
/// fixtures can exercise path-dependent rules from tests/lint_fixtures/).
[[nodiscard]] FileIndex build_file_index(const std::string& path,
                                         const std::string& content);

struct RepoIndex {
  std::vector<FileIndex> files;
  /// Function names (across the whole tree) whose bodies write to streams.
  std::set<std::string> stream_writers;
  /// Header observer signatures by function name: every distinct observer
  /// kind-sequence declared for that name in any header.
  std::map<std::string, std::vector<std::vector<ObserverKind>>> header_sigs;
};

/// Indexes every file and fills the cross-file lookup tables.
[[nodiscard]] RepoIndex build_repo_index(
    const std::vector<std::string>& paths);

/// True when [begin, end) of the file's blanked text performs a stream
/// write: an fprintf-family call, or `var <<` with `var` one of the file's
/// known stream variables.
[[nodiscard]] bool region_writes_stream(const FileIndex& fi,
                                        std::size_t begin, std::size_t end);

}  // namespace hblint
