// hblint CLI. Usage:
//
//   hblint [--list-rules] [--baseline <file>] [--write-baseline <file>]
//          [--sarif <file>] <file-or-dir>...
//
// Lints every .cpp/.cc/.hpp/.hh/.h under the given paths (skipping
// lint_fixtures, build*, and dot directories) as one program -- the
// cross-file rules (layering, signature-contract, emission-order
// reachability) see the whole include graph. Prints
// `file:line: [rule] message` diagnostics and exits 1 if any finding is
// not absorbed by the baseline.
//
//   --baseline <file>        tolerate the findings recorded in <file>
//                            (missing file = empty baseline)
//   --write-baseline <file>  write the current findings as the new
//                            baseline and exit 0
//   --sarif <file>           also write a SARIF 2.1.0 log of the
//                            unbaselined findings (for code scanning)
//
// Run over this repository: `hblint --baseline
// tools/hblint/hblint-baseline.txt src tools tests` (the `lint` CMake
// target and the `hblint.tree` CTest entry do exactly that).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "hblint/hblint.hpp"

namespace {

constexpr const char* kUsage =
    "usage: hblint [--list-rules] [--baseline FILE] [--write-baseline FILE]"
    " [--sarif FILE] <file-or-dir>...\n";

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : hblint::rules()) {
        std::printf("%-22s %s\n", rule.name, rule.description);
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    }
    const auto take_value = [&](std::string& dst) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hblint: %s needs a file argument\n%s",
                     arg.c_str(), kUsage);
        return false;
      }
      dst = argv[++i];
      return true;
    };
    if (arg == "--baseline") {
      if (!take_value(baseline_path)) return 2;
      continue;
    }
    if (arg == "--write-baseline") {
      if (!take_value(write_baseline_path)) return 2;
      continue;
    }
    if (arg == "--sarif") {
      if (!take_value(sarif_path)) return 2;
      continue;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  const std::vector<std::string> files = hblint::collect_files(roots);
  if (files.empty()) {
    std::fprintf(stderr, "hblint: no lintable files under given paths\n");
    return 2;
  }

  const std::vector<hblint::Diagnostic> all = hblint::lint_tree(files);

  if (!write_baseline_path.empty()) {
    if (!write_text(write_baseline_path, hblint::serialize_baseline(all))) {
      std::fprintf(stderr, "hblint: cannot write baseline to %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::printf("hblint: wrote baseline (%zu finding(s)) to %s\n",
                all.size(), write_baseline_path.c_str());
    return 0;
  }

  const hblint::Baseline baseline =
      baseline_path.empty() ? hblint::Baseline{}
                            : hblint::load_baseline(baseline_path);
  const hblint::BaselineSplit split = hblint::apply_baseline(all, baseline);

  for (const auto& d : split.unbaselined) {
    std::printf("%s:%zu: [%s] %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (!sarif_path.empty()) {
    if (!write_text(sarif_path, hblint::sarif_report(split.unbaselined))) {
      std::fprintf(stderr, "hblint: cannot write SARIF to %s\n",
                   sarif_path.c_str());
      return 2;
    }
  }

  if (!split.unbaselined.empty()) {
    std::fprintf(stderr,
                 "hblint: %zu new finding(s) in %zu file(s) scanned"
                 " (%zu baselined)\n",
                 split.unbaselined.size(), files.size(), split.baselined);
    return 1;
  }
  if (split.baselined > 0) {
    std::printf("hblint: clean (%zu files, %zu baselined finding(s))\n",
                files.size(), split.baselined);
  } else {
    std::printf("hblint: clean (%zu files)\n", files.size());
  }
  return 0;
}
