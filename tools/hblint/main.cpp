// hblint CLI. Usage:
//
//   hblint [--list-rules] <file-or-dir>...
//
// Lints every .cpp/.cc/.hpp/.hh/.h under the given paths (skipping
// lint_fixtures, build*, and dot directories), prints
// `file:line: [rule] message` diagnostics, and exits 1 if any fired.
// Run over this repository: `hblint src tools tests` (the `lint` CMake
// target and the `hblint.tree` CTest entry do exactly that).
#include <cstdio>
#include <string>
#include <vector>

#include "hblint/hblint.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : hblint::rules()) {
        std::printf("%-22s %s\n", rule.name, rule.description);
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: hblint [--list-rules] <file-or-dir>...\n");
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: hblint [--list-rules] <file-or-dir>...\n");
    return 2;
  }

  const std::vector<std::string> files = hblint::collect_files(roots);
  if (files.empty()) {
    std::fprintf(stderr, "hblint: no lintable files under given paths\n");
    return 2;
  }
  std::size_t findings = 0;
  for (const std::string& file : files) {
    for (const auto& d : hblint::lint_file(file)) {
      std::printf("%s:%zu: [%s] %s\n", d.file.c_str(), d.line,
                  d.rule.c_str(), d.message.c_str());
      ++findings;
    }
  }
  if (findings > 0) {
    std::fprintf(stderr, "hblint: %zu finding(s) in %zu file(s) scanned\n",
                 findings, files.size());
    return 1;
  }
  std::printf("hblint: clean (%zu files)\n", files.size());
  return 0;
}
