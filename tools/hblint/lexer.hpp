// hblint lexing layer: comment/literal blanking and the small positional
// helpers every other module builds on. Nothing here knows about rules.
//
// The central idea is unchanged from v1: `blank_noncode` replaces every
// comment, string literal, character literal, and raw string with spaces
// (preserving newlines), so the index and rule layers can match against
// code tokens only without a real parser.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hblint::lex {

/// Returns `content` with every comment, string literal, and character
/// literal replaced by spaces (newlines preserved). Handles //, /* */,
/// "..." with escapes, '...', and raw strings R"delim(...)delim".
[[nodiscard]] std::string blank_noncode(const std::string& content);

/// Splits on '\n'; the trailing segment is kept even when empty.
[[nodiscard]] std::vector<std::string> split_lines(const std::string& text);

/// 1-based line of byte offset `pos` in `text`.
[[nodiscard]] std::size_t line_of(const std::string& text, std::size_t pos);

/// Identifier characters: [A-Za-z0-9_].
[[nodiscard]] bool is_word(char c);

/// Position of the bracket matching the `open` at `pos` (text[pos] must be
/// `open`); npos when unbalanced. Counts nested `open`/`close` pairs only,
/// so it must run over blanked text.
[[nodiscard]] std::size_t match_forward(const std::string& text,
                                        std::size_t pos, char open,
                                        char close);

/// Position of the last non-whitespace character strictly before `pos`;
/// npos when there is none.
[[nodiscard]] std::size_t prev_nonspace(const std::string& text,
                                        std::size_t pos);

/// Position of the first non-whitespace character at or after `pos`; npos
/// when there is none.
[[nodiscard]] std::size_t next_nonspace(const std::string& text,
                                        std::size_t pos);

/// The identifier ending at `end` (exclusive); empty if text[end-1] is not
/// a word character. `begin_out`, when non-null, receives the start offset.
[[nodiscard]] std::string word_ending_at(const std::string& text,
                                         std::size_t end,
                                         std::size_t* begin_out = nullptr);

/// An identifier token with its byte offset.
struct Token {
  std::string text;
  std::size_t pos = 0;
};

/// All identifier tokens in [begin, end) of blanked text, in order.
[[nodiscard]] std::vector<Token> identifiers(const std::string& blanked,
                                             std::size_t begin,
                                             std::size_t end);

}  // namespace hblint::lex
