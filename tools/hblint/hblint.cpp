// hblint orchestration: file collection, scope selection, and the
// single-file / whole-tree lint drivers. The interesting machinery lives
// in lexer.cpp (blanking), index.cpp (symbol tables), rules.cpp (the rule
// engine), and report.cpp (baseline + SARIF).
#include "hblint/hblint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "hblint/index.hpp"
#include "hblint/rules.hpp"

namespace hblint {
namespace {

void sort_and_dedup(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.file == b.file && a.line == b.line &&
                                   a.rule == b.rule &&
                                   a.message == b.message;
                          }),
              diags.end());
}

void drop_suppressed(const FileIndex& fi, std::vector<Diagnostic>& diags) {
  std::erase_if(diags, [&](const Diagnostic& d) {
    return d.file == fi.path && fi.suppressions.allows(d.rule, d.line);
  });
}

}  // namespace

Scope scope_of_path(const std::string& path) {
  const auto has = [&](const char* frag) {
    return path.find(frag) != std::string::npos;
  };
  if (has("tests/") || has("tests\\")) return Scope::kTests;
  if (has("tools/") || has("tools\\")) return Scope::kTools;
  return Scope::kLibrary;
}

std::vector<Diagnostic> lint_content(const std::string& path,
                                     const std::string& content) {
  const FileIndex fi = build_file_index(path, content);
  std::vector<Diagnostic> diags;
  run_file_rules(fi, nullptr, diags);
  drop_suppressed(fi, diags);
  sort_and_dedup(diags);
  return diags;
}

std::vector<Diagnostic> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io", "cannot open file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_content(path, buf.str());
}

std::vector<Diagnostic> lint_tree(const std::vector<std::string>& files) {
  const RepoIndex repo = build_repo_index(files);
  std::vector<Diagnostic> diags;
  for (std::size_t i = 0; i < repo.files.size(); ++i) {
    if (repo.files[i].blanked.empty() && !files[i].empty()) {
      std::ifstream probe(files[i], std::ios::binary);
      if (!probe) {
        diags.push_back({files[i], 0, "io", "cannot open file"});
        continue;
      }
    }
    run_file_rules(repo.files[i], &repo, diags);
  }
  run_tree_rules(repo, diags);
  for (const FileIndex& fi : repo.files) drop_suppressed(fi, diags);
  sort_and_dedup(diags);
  return diags;
}

std::vector<std::string> collect_files(
    const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  const auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".hh" ||
           ext == ".h";
  };
  const auto skip_dir = [](const fs::path& p) {
    const std::string name = p.filename().string();
    return name == "lint_fixtures" || name.starts_with("build") ||
           name.starts_with(".");
  };
  for (const std::string& root : roots) {
    fs::path rp(root);
    if (fs::is_regular_file(rp)) {
      files.push_back(rp.string());
      continue;
    }
    if (!fs::is_directory(rp)) continue;
    fs::recursive_directory_iterator it(rp), end;
    while (it != end) {
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path().string());
      }
      ++it;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace hblint
