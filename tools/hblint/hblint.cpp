#include "hblint/hblint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace hblint {
namespace {

// ---------------------------------------------------------------------------
// Source preparation: blank comments and literals, keep line structure.
// ---------------------------------------------------------------------------

/// Returns `content` with every comment, string literal, and character
/// literal replaced by spaces (newlines preserved), so rules match code
/// tokens only. Handles //, /* */, "..." with escapes, '...', and raw
/// strings R"delim(...)delim".
std::string blank_noncode(const std::string& content) {
  std::string out = content;
  enum class St {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  St st = St::kCode;
  std::string raw_close;  // )delim" of the active raw string
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string if preceded by R (and that R is not part of an
          // identifier like DIR).
          const bool raw =
              i > 0 && content[i - 1] == 'R' &&
              (i < 2 || (!std::isalnum(static_cast<unsigned char>(
                             content[i - 2])) &&
                         content[i - 2] != '_'));
          if (raw) {
            std::size_t p = i + 1;
            std::string delim;
            while (p < content.size() && content[p] != '(') {
              delim.push_back(content[p]);
              ++p;
            }
            raw_close = ")" + delim + "\"";
            st = St::kRawString;
          } else {
            st = St::kString;
          }
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not character literals.
          const bool digit_sep =
              i > 0 &&
              std::isdigit(static_cast<unsigned char>(content[i - 1])) &&
              std::isalnum(static_cast<unsigned char>(next));
          if (!digit_sep) st = St::kChar;
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < content.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < content.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRawString:
        if (content.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t k = 0; k < raw_close.size(); ++k) {
            if (content[i + k] != '\n') out[i + k] = ' ';
          }
          i += raw_close.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// 1-based line of byte offset `pos` in `text`.
std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(pos, text.size())),
                            '\n'));
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

struct Suppressions {
  // rule -> set of 1-based lines; rule "" means any rule on that line.
  std::vector<std::pair<std::string, std::size_t>> line_allows;
  std::vector<std::string> file_allows;

  [[nodiscard]] bool allows(const std::string& rule, std::size_t line) const {
    for (const auto& r : file_allows) {
      if (r == rule || r == "*") return true;
    }
    for (const auto& [r, l] : line_allows) {
      if (l == line && (r == rule || r == "*")) return true;
    }
    return false;
  }
};

Suppressions parse_suppressions(const std::vector<std::string>& raw_lines) {
  Suppressions sup;
  static const std::regex kAllow(
      R"(hblint:\s*(allow|allow-file)\(([^)]*)\))");
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    auto begin = std::sregex_iterator(raw_lines[i].begin(),
                                      raw_lines[i].end(), kAllow);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      std::stringstream rules((*it)[2].str());
      std::string rule;
      while (std::getline(rules, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                   rule.end());
        if (rule.empty()) continue;
        if ((*it)[1].str() == "allow-file") {
          sup.file_allows.push_back(rule);
        } else {
          sup.line_allows.emplace_back(rule, i + 1);
        }
      }
    }
  }
  return sup;
}

// ---------------------------------------------------------------------------
// Rule helpers.
// ---------------------------------------------------------------------------

struct FileCtx {
  std::string path;
  Scope scope = Scope::kLibrary;
  bool is_header = false;
  bool in_obs = false;  // src/obs/ is the trace implementation itself
  std::string blanked;                // whole text, literals blanked
  std::vector<std::string> lines;     // blanked, per line
  std::vector<Diagnostic>* out = nullptr;

  void report(std::size_t line, const char* rule, std::string message) const {
    out->push_back({path, line, rule, std::move(message)});
  }
};

/// Applies `re` line by line and reports each match.
void flag_lines(const FileCtx& ctx, const std::regex& re, const char* rule,
                const std::string& message) {
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    if (std::regex_search(ctx.lines[i], re)) {
      ctx.report(i + 1, rule, message);
    }
  }
}

// -- unordered-iteration ----------------------------------------------------

/// Names declared in this file as std::unordered_{map,set}<...> variables
/// (including references/pointers to them).
std::vector<std::string> unordered_decl_names(const std::string& blanked) {
  std::vector<std::string> names;
  static const std::regex kDecl(R"(\bunordered_(map|set)\b)");
  auto begin =
      std::sregex_iterator(blanked.begin(), blanked.end(), kDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::size_t p = static_cast<std::size_t>(it->position()) +
                    static_cast<std::size_t>(it->length());
    while (p < blanked.size() && std::isspace(static_cast<unsigned char>(
                                     blanked[p]))) {
      ++p;
    }
    if (p >= blanked.size() || blanked[p] != '<') continue;
    int depth = 0;
    while (p < blanked.size()) {
      if (blanked[p] == '<') ++depth;
      if (blanked[p] == '>') {
        --depth;
        if (depth == 0) break;
      }
      ++p;
    }
    if (p >= blanked.size()) continue;
    ++p;  // past closing '>'
    while (p < blanked.size() &&
           (std::isspace(static_cast<unsigned char>(blanked[p])) ||
            blanked[p] == '&' || blanked[p] == '*')) {
      ++p;
    }
    std::string name;
    while (p < blanked.size() && is_word(blanked[p])) {
      name.push_back(blanked[p]);
      ++p;
    }
    // `>::iterator` and friends produce no name; `>(...)` casts neither.
    if (!name.empty() &&
        !std::isdigit(static_cast<unsigned char>(name.front()))) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void rule_unordered_iteration(const FileCtx& ctx) {
  const std::vector<std::string> names = unordered_decl_names(ctx.blanked);
  for (const std::string& name : names) {
    const std::regex range_for(R"(for\s*\([^)]*:\s*\*?)" + name +
                               R"(\s*\))");
    flag_lines(ctx, range_for, "unordered-iteration",
               "range-for over unordered container '" + name +
                   "': iteration order is a hash-table implementation "
                   "detail; extract into a vector, sort, then iterate "
                   "(or suppress if order provably cannot reach results "
                   "or telemetry)");
  }
}

// -- sink-default -----------------------------------------------------------

/// Entry points whose declarations must keep the trailing
/// `obs::Sink* = nullptr` observability parameter.
const char* const kSinkEntryPoints[] = {
    "run_simulation", "run_simulation_with_fault_events",
    "run_wormhole",   "run_protocol",
    "route_around_faults", "hb_greedy_broadcast",
    "hb_structured_broadcast",
};

void rule_sink_default(const FileCtx& ctx) {
  // (a) Every `obs::Sink*` parameter in a header must be defaulted to
  // nullptr: a caller must never be forced to thread observability through.
  static const std::regex kSinkParam(R"(obs\s*::\s*Sink\s*\*)");
  static const std::regex kDefaulted(R"(=\s*nullptr)");
  auto begin = std::sregex_iterator(ctx.blanked.begin(), ctx.blanked.end(),
                                    kSinkParam);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::size_t p = static_cast<std::size_t>(it->position()) +
                    static_cast<std::size_t>(it->length());
    // The parameter's text ends at a top-level ',', ')' or ';'.
    int depth = 0;
    std::size_t end = p;
    while (end < ctx.blanked.size()) {
      const char c = ctx.blanked[end];
      if (c == '(' || c == '<' || c == '{') ++depth;
      if (c == ')' || c == '>' || c == '}') {
        if (depth == 0) break;
        --depth;
      }
      if ((c == ',' || c == ';') && depth == 0) break;
      ++end;
    }
    const std::string param = ctx.blanked.substr(p, end - p);
    if (!std::regex_search(param, kDefaulted)) {
      ctx.report(line_of(ctx.blanked, static_cast<std::size_t>(it->position())),
                 "sink-default",
                 "obs::Sink* parameter in a header must default to nullptr "
                 "(observability is opt-in at every call site)");
    }
  }
  // (b) Known simulator/broadcast entry points must carry the parameter at
  // all -- removing it entirely would otherwise pass check (a).
  for (const char* name : kSinkEntryPoints) {
    const std::regex decl(std::string(R"(\b)") + name + R"(\s*\()");
    auto dbegin = std::sregex_iterator(ctx.blanked.begin(),
                                       ctx.blanked.end(), decl);
    for (auto it = dbegin; it != std::sregex_iterator(); ++it) {
      std::size_t open = static_cast<std::size_t>(it->position()) +
                         static_cast<std::size_t>(it->length()) - 1;
      int depth = 0;
      std::size_t close = open;
      while (close < ctx.blanked.size()) {
        if (ctx.blanked[close] == '(') ++depth;
        if (ctx.blanked[close] == ')') {
          --depth;
          if (depth == 0) break;
        }
        ++close;
      }
      const std::string params =
          ctx.blanked.substr(open, close - open);
      static const std::regex kSinkDefaulted(
          R"(Sink\s*\*\s*\w*\s*=\s*nullptr)");
      if (!std::regex_search(params, kSinkDefaulted)) {
        ctx.report(
            line_of(ctx.blanked, static_cast<std::size_t>(it->position())),
            "sink-default",
            std::string("entry point '") + name +
                "' must keep its trailing `obs::Sink* = nullptr` parameter");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule catalogue and driver.
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"no-rand",
     "std::rand/srand are banned; use a std::mt19937_64 seeded from config"},
    {"no-time-seed",
     "time() is banned (wall-clock seeds break run-to-run determinism)"},
    {"no-random-device",
     "std::random_device is banned outside explicitly suppressed seeded-RNG "
     "construction sites"},
    {"no-wall-clock",
     "wall clocks (system/steady/high_resolution_clock, clock_gettime, ...) "
     "are banned in library code; simulators count cycles, benches use the "
     "benchmark framework"},
    {"wall-clock-outside-obs",
     "std::chrono is confined to src/obs/ (the telemetry layer timestamps "
     "snapshots); every other library file is cycle-based and "
     "deterministic"},
    {"unordered-iteration",
     "no range-for over unordered_map/unordered_set; extract keys, sort, "
     "then iterate"},
    {"sink-default",
     "simulator/broadcast entry points keep a trailing obs::Sink* = nullptr "
     "parameter, and every header Sink* parameter is defaulted"},
    {"trace-macro-only",
     "hot paths emit traces via HBNET_TRACE_* macros only, never by calling "
     "the TraceRecorder directly"},
    {"no-raw-new",
     "no raw new/delete; use containers or std::make_unique"},
    {"no-bare-assert",
     "no bare assert() in src/; use HBNET_CHECK / HBNET_DCHECK "
     "(check/check.hpp)"},
};

void run_rules(FileCtx& ctx) {
  // Banned nondeterminism sources (all scopes).
  static const std::regex kRand(
      R"((^|[^\w:])(std\s*::\s*)?(rand|srand)\s*\()");
  flag_lines(ctx, kRand, "no-rand",
             "banned nondeterminism source; seed a std::mt19937_64 from the "
             "run's config instead");
  static const std::regex kTime(R"((^|[^\w])(std\s*::\s*)?time\s*\()");
  flag_lines(ctx, kTime, "no-time-seed",
             "time() reads the wall clock; results must be a pure function "
             "of the config/seed");
  static const std::regex kRandomDevice(R"(\brandom_device\b)");
  flag_lines(ctx, kRandomDevice, "no-random-device",
             "std::random_device is nondeterministic; accept a seed and use "
             "std::mt19937_64 (suppress only at a documented seeded-RNG "
             "construction site)");
  static const std::regex kNew(R"(\bnew\b)");
  flag_lines(ctx, kNew, "no-raw-new",
             "raw new; use a container or std::make_unique");
  // `= delete` (deleted functions) is legal C++ hygiene; only flag delete
  // applied to an operand.
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& line = ctx.lines[i];
    for (std::size_t pos = line.find("delete"); pos != std::string::npos;
         pos = line.find("delete", pos + 1)) {
      if (pos > 0 && is_word(line[pos - 1])) continue;
      if (pos + 6 < line.size() && is_word(line[pos + 6])) continue;
      // Look left for '=': deleted special member.
      std::size_t left = pos;
      while (left > 0 && std::isspace(static_cast<unsigned char>(
                             line[left - 1]))) {
        --left;
      }
      if (left > 0 && line[left - 1] == '=') continue;
      ctx.report(i + 1, "no-raw-new",
                 "raw delete; owning containers/smart pointers free their "
                 "storage themselves");
    }
  }

  rule_unordered_iteration(ctx);

  if (ctx.scope == Scope::kLibrary) {
    // The obs/ telemetry layer is the one library component allowed to read
    // clocks (snapshot timestamps, exporter cadence); everywhere else both
    // the clock types and <chrono> itself are banned.
    if (!ctx.in_obs) {
      static const std::regex kClock(
          R"(\b(system_clock|steady_clock|high_resolution_clock|clock_gettime|gettimeofday)\b)");
      flag_lines(ctx, kClock, "no-wall-clock",
                 "wall clock in library code; simulators are cycle-based and "
                 "deterministic, timing belongs in bench/");
      static const std::regex kChrono(R"(\bchrono\b)");
      flag_lines(ctx, kChrono, "wall-clock-outside-obs",
                 "std::chrono outside src/obs/; engines count cycles -- only "
                 "the telemetry layer may touch time");
    }
    static const std::regex kAssert(R"(\bassert\s*\()");
    flag_lines(ctx, kAssert, "no-bare-assert",
               "bare assert(); use HBNET_CHECK (always on) or HBNET_DCHECK "
               "(checked builds) from check/check.hpp");
    if (!ctx.in_obs) {
      static const std::regex kRecorder(R"(\bTraceRecorder\b)");
      flag_lines(ctx, kRecorder, "trace-macro-only",
                 "direct TraceRecorder use in library code; emit through "
                 "the HBNET_TRACE_* macros so -DHBNET_TRACE=OFF compiles "
                 "the site out");
      static const std::regex kTraceCall(R"((\.|->)\s*trace\s*\(\s*\))");
      flag_lines(ctx, kTraceCall, "trace-macro-only",
                 "direct Sink::trace() call in library code; emit through "
                 "the HBNET_TRACE_* macros");
    }
    if (ctx.is_header) rule_sink_default(ctx);
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

Scope scope_of_path(const std::string& path) {
  const auto has = [&](const char* frag) {
    return path.find(frag) != std::string::npos;
  };
  if (has("tests/") || has("tests\\")) return Scope::kTests;
  if (has("tools/") || has("tools\\")) return Scope::kTools;
  return Scope::kLibrary;
}

std::vector<Diagnostic> lint_content(const std::string& path,
                                     const std::string& content) {
  std::vector<Diagnostic> diags;
  FileCtx ctx;
  ctx.path = path;
  ctx.out = &diags;
  ctx.is_header = path.ends_with(".hpp") || path.ends_with(".hh") ||
                  path.ends_with(".h");
  ctx.in_obs = path.find("obs/") != std::string::npos ||
               path.find("obs\\") != std::string::npos;
  ctx.scope = scope_of_path(path);
  // Fixture pragma: lets a file under tests/lint_fixtures/ be linted as if
  // it lived in src/, src/obs/, or tools/.
  static const std::regex kScopePragma(
      R"(hblint-scope:\s*(src|obs|tools|tests))");
  std::smatch m;
  if (std::regex_search(content, m, kScopePragma)) {
    const std::string s = m[1].str();
    ctx.scope = (s == "src" || s == "obs") ? Scope::kLibrary
                : s == "tools"             ? Scope::kTools
                                           : Scope::kTests;
    if (s == "src") ctx.in_obs = false;
    if (s == "obs") ctx.in_obs = true;
  }
  ctx.blanked = blank_noncode(content);
  ctx.lines = split_lines(ctx.blanked);

  run_rules(ctx);

  const Suppressions sup = parse_suppressions(split_lines(content));
  std::erase_if(diags, [&](const Diagnostic& d) {
    return sup.allows(d.rule, d.line);
  });
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return diags;
}

std::vector<Diagnostic> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io", "cannot open file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_content(path, buf.str());
}

std::vector<std::string> collect_files(
    const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  const auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".hh" ||
           ext == ".h";
  };
  const auto skip_dir = [](const fs::path& p) {
    const std::string name = p.filename().string();
    return name == "lint_fixtures" || name.starts_with("build") ||
           name.starts_with(".");
  };
  for (const std::string& root : roots) {
    fs::path rp(root);
    if (fs::is_regular_file(rp)) {
      files.push_back(rp.string());
      continue;
    }
    if (!fs::is_directory(rp)) continue;
    fs::recursive_directory_iterator it(rp), end;
    while (it != end) {
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path().string());
      }
      ++it;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace hblint
