// hbnet command-line tool: inspect hyper-butterfly instances, compute
// routes and disjoint paths, export DOT/edge lists, and run quick analyses
// without writing code.
//
// Usage:
//   hbnet_cli info <m> <n>
//   hbnet_cli route <m> <n> <src-id> <dst-id>
//   hbnet_cli disjoint <m> <n> <src-id> <dst-id>
//   hbnet_cli label <m> <n> <id>
//   hbnet_cli dot <m> <n> [file]
//   hbnet_cli edges <m> <n> [file]
//   hbnet_cli cuts <m> <n>
//   hbnet_cli election <m> <n>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/cuts.hpp"
#include "core/hyper_butterfly.hpp"
#include "distsim/leader_election.hpp"
#include "graph/io.hpp"

namespace {

using hbnet::HbIndex;
using hbnet::HbNode;
using hbnet::HyperButterfly;

int usage() {
  std::cerr
      << "usage: hbnet_cli <command> <m> <n> [args]\n"
         "  info <m> <n>                   structural summary\n"
         "  route <m> <n> <src> <dst>      optimal route between dense ids\n"
         "  disjoint <m> <n> <src> <dst>   the m+4 disjoint paths (Thm 5)\n"
         "  label <m> <n> <id>             Cayley symbol label of a vertex\n"
         "  dot <m> <n> [file]             Graphviz export\n"
         "  edges <m> <n> [file]           edge-list export\n"
         "  cuts <m> <n>                   dimension cuts / bisection bound\n"
         "  election <m> <n>               run both leader elections\n";
  return 2;
}

void print_node(const HyperButterfly& hb, HbNode v) {
  std::cout << "(" << v.cube << ",'" << hb.butterfly().label(v.bfly) << "')";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string cmd = argv[1];
  const unsigned m = static_cast<unsigned>(std::stoul(argv[2]));
  const unsigned n = static_cast<unsigned>(std::stoul(argv[3]));
  HyperButterfly hb(m, n);

  if (cmd == "info") {
    std::cout << "HB(" << m << "," << n << ")\n"
              << "  nodes:            " << hb.num_nodes() << "\n"
              << "  edges:            " << hb.num_edges() << "\n"
              << "  degree (regular): " << hb.degree() << "\n"
              << "  diameter formula: " << hb.diameter_formula()
              << "  (measured: m + floor(3n/2) = " << m + 3 * n / 2 << ")\n"
              << "  connectivity:     " << hb.degree()
              << "  (maximally fault tolerant)\n"
              << "  tolerates any " << hb.degree() - 1 << " node faults\n";
    return 0;
  }
  if (cmd == "label" && argc >= 5) {
    HbIndex id = std::stoull(argv[4]);
    if (id >= hb.num_nodes()) {
      std::cerr << "id out of range\n";
      return 1;
    }
    HbNode v = hb.node_at(id);
    std::cout << "id " << id << " = ";
    print_node(hb, v);
    std::cout << "  [cube=" << v.cube << " word=" << v.bfly.word
              << " level=" << v.bfly.level
              << " PI=" << hb.butterfly().permutation_index(v.bfly)
              << " CI=" << hb.butterfly().complementation_index(v.bfly)
              << "]\n";
    return 0;
  }
  if ((cmd == "route" || cmd == "disjoint") && argc >= 6) {
    HbIndex s = std::stoull(argv[4]), t = std::stoull(argv[5]);
    if (s >= hb.num_nodes() || t >= hb.num_nodes() || s == t) {
      std::cerr << "bad endpoints\n";
      return 1;
    }
    HbNode u = hb.node_at(s), v = hb.node_at(t);
    if (cmd == "route") {
      std::cout << "distance " << hb.distance(u, v) << "\n";
      for (const HbNode& w : hb.route(u, v)) {
        print_node(hb, w);
        std::cout << " ";
      }
      std::cout << "\n";
    } else {
      auto family = hb.disjoint_paths(u, v);
      std::cout << family.size() << " internally disjoint paths:\n";
      for (const auto& p : family) {
        std::cout << "  [" << p.size() - 1 << " hops] ";
        for (const HbNode& w : p) {
          print_node(hb, w);
          std::cout << " ";
        }
        std::cout << "\n";
      }
    }
    return 0;
  }
  if (cmd == "dot" || cmd == "edges") {
    std::ofstream file;
    std::ostream* os = &std::cout;
    if (argc >= 5) {
      file.open(argv[4]);
      if (!file) {
        std::cerr << "cannot open " << argv[4] << "\n";
        return 1;
      }
      os = &file;
    }
    hbnet::Graph g = hb.to_graph();
    if (cmd == "dot") {
      hbnet::DotOptions opts;
      opts.graph_name = "HB_" + std::to_string(m) + "_" + std::to_string(n);
      for (HbIndex id = 0; id < hb.num_nodes(); ++id) {
        HbNode v = hb.node_at(id);
        opts.labels.push_back(std::to_string(v.cube) + "," +
                              hb.butterfly().label(v.bfly));
      }
      write_dot(*os, g, opts);
    } else {
      write_edge_list(*os, g);
    }
    return 0;
  }
  if (cmd == "cuts") {
    for (const auto& cut : hbnet::hb_dimension_cuts(hb)) {
      std::cout << "  " << cut.name << ": width " << cut.width
                << (cut.balanced ? " (balanced)" : " (unbalanced)") << "\n";
    }
    std::uint64_t ub =
        hbnet::sampled_bisection_upper_bound(hb.to_graph(), 3, 11);
    std::cout << "  sampled bisection upper bound: " << ub
              << "  => Thompson VLSI area lower bound ~ "
              << hbnet::thompson_area_lower_bound(ub) << " grid units\n";
    return 0;
  }
  if (cmd == "election") {
    auto flood = hbnet::flood_max_election(hb.to_graph());
    auto structured = hbnet::hb_structured_election(hb);
    std::cout << "flood-max:  leader " << flood.leader << ", "
              << flood.run.rounds << " rounds, " << flood.run.messages
              << " messages\n"
              << "structured: leader " << structured.leader << ", "
              << structured.run.rounds << " rounds, "
              << structured.run.messages << " messages\n";
    return 0;
  }
  return usage();
}
