// hbnet command-line tool: inspect hyper-butterfly instances, compute
// routes and disjoint paths, export DOT/edge lists, run quick analyses,
// and drive the packet/wormhole simulators with full telemetry export.
//
// Usage:
//   hbnet_cli info <m> <n>
//   hbnet_cli route <m> <n> <src-id> <dst-id>
//   hbnet_cli disjoint <m> <n> <src-id> <dst-id>
//   hbnet_cli label <m> <n> <id>
//   hbnet_cli dot <m> <n> [file]
//   hbnet_cli edges <m> <n> [file]
//   hbnet_cli cuts <m> <n>
//   hbnet_cli election <m> <n>
//   hbnet_cli analyze <m> <n> [--threads N] [--audit]
//   hbnet_cli analyze <m> <n> --exact-connectivity [--checkpoint FILE]
//                             [--threads N] [--metrics-out FILE]
//                             [--sparsify] [--implicit] [--no-orbits]
//                             [--max-blocks N]
//   hbnet_cli wormhole <m> <n> [sim options]
//   hbnet_cli sim <m> <n> [sim options]
//   hbnet_cli campaign <m> <n> [campaign options]
//
// Sim options (wormhole/sim): --rate R --cycles C --vcs V --flits F
//   --pattern uniform|complement|reversal|shuffle|hotspot
//   --policy any|dateline|segment (wormhole) --valiant (sim) --seed S
//   --threads N --trace-out FILE --metrics-out FILE --links-csv FILE
//
// Live telemetry (campaign, analyze --exact-connectivity, wormhole, sim):
//   --stream-out FILE writes an NDJSON snapshot stream plus a Prometheus
//   text exposition (FILE.prom unless --prom-out overrides) while the run
//   is in flight; --progress renders a single rewriting status line on
//   stderr. Both are read-only observers -- results stay byte-identical
//   with them on or off (tools/test_stream_determinism.sh enforces it).
//
// Every numeric argv token goes through campaign/grid.hpp's checked
// parsers: a malformed or partial token ("4x", "", "1e999") prints usage
// and exits nonzero instead of dying on an uncaught std::stoul exception.
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/cuts.hpp"
#include "campaign/campaign.hpp"
#include "campaign/grid.hpp"
#include "core/hyper_butterfly.hpp"
#include "distsim/leader_election.hpp"
#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"
#include "graph/connectivity_sweep.hpp"
#include "graph/io.hpp"
#include "graph/parallel_bfs.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/sink.hpp"
#include "obs/snapshot.hpp"
#include "par/pool.hpp"
#include "topology/hb_implicit.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/wormhole.hpp"

namespace {

using hbnet::HbIndex;
using hbnet::HbNode;
using hbnet::HyperButterfly;

int usage() {
  std::cerr
      << "usage: hbnet_cli <command> <m> <n> [args]\n"
         "  info <m> <n>                   structural summary\n"
         "  route <m> <n> <src> <dst>      optimal route between dense ids\n"
         "  disjoint <m> <n> <src> <dst>   the m+4 disjoint paths (Thm 5)\n"
         "  label <m> <n> <id>             Cayley symbol label of a vertex\n"
         "  dot <m> <n> [file]             Graphviz export\n"
         "  edges <m> <n> [file]           edge-list export\n"
         "  cuts <m> <n>                   dimension cuts / bisection bound\n"
         "  election <m> <n>               run both leader elections\n"
         "  analyze <m> <n> [--threads N] [--audit]\n"
         "                                 parallel structural analysis\n"
         "                                 (--audit: verify Thm 5 on all pairs)\n"
         "  analyze <m> <n> --exact-connectivity [--checkpoint FILE]\n"
         "                  [--threads N] [--metrics-out FILE]\n"
         "                  [--sparsify] [--implicit] [--no-orbits]\n"
         "                  [--max-blocks N]\n"
         "                                 checkpointed Even-Tarjan sweep\n"
         "                                 proving kappa(HB(m,n)) = m+4\n"
         "                                 --sparsify: run flows on\n"
         "                                 Nagamochi-Ibaraki certificates\n"
         "                                 --implicit: generator-arithmetic\n"
         "                                 adjacency, no materialized CSR\n"
         "                                 --no-orbits: disable the cube-\n"
         "                                 permutation target reduction\n"
         "                                 --max-blocks: stop after N blocks\n"
         "                                 (resume via --checkpoint)\n"
         "  wormhole <m> <n> [options]     flit-level wormhole run on HB(m,n)\n"
         "  sim <m> <n> [options]          store-and-forward run on HB(m,n)\n"
         "  campaign <m> <n> [options]     deterministic fault-injection\n"
         "                                 campaign over the thread pool\n"
         "options for wormhole/sim:\n"
         "  --rate R --cycles C --warmup W --drain D --vcs V --flits F\n"
         "  --seed S --threads N\n"
         "  --pattern uniform|complement|reversal|shuffle|hotspot\n"
         "  --policy any|dateline|segment|adaptive   --valiant\n"
         "  --faults K          wormhole only: K static node faults derived\n"
         "                      from the seed (requires --policy adaptive)\n"
         "  --link-faults K     wormhole only: K static directed link faults\n"
         "                      (requires --policy adaptive)\n"
         "  --shards S          sim only: run the sharded synchronous\n"
         "                      engine (counter-based traffic; 0 = one\n"
         "                      shard per worker). Results are identical\n"
         "                      for every --threads x --shards choice\n"
         "  --trace-out FILE    Chrome trace JSON (chrome://tracing, Perfetto)\n"
         "  --metrics-out FILE  metrics/links/timeseries JSON\n"
         "  --links-csv FILE    per-link utilization CSV\n"
         "live telemetry (campaign / analyze --exact-connectivity /\n"
         "wormhole / sim; results stay byte-identical with it on or off):\n"
         "  --stream-out FILE   append-only NDJSON snapshot stream; also\n"
         "                      writes FILE.prom (Prometheus text format)\n"
         "  --prom-out FILE     override the Prometheus exposition path\n"
         "  --stream-interval-ms MS  snapshot interval (default 200)\n"
         "  --progress          single rewriting status line on stderr\n"
         "options for campaign:\n"
         "  --models M1,M2      random|adversarial|events|links (default\n"
         "                      random; events is sf-only, links wormhole-only)\n"
         "  --rates R1,R2       injection rates in (0,1] (default 0.05)\n"
         "  --faults K1,K2      fault counts per cell (default 0)\n"
         "  --trials T          repeats per grid cell (default 1)\n"
         "  --seed S            campaign master seed (default 1)\n"
         "  --engine sf|wormhole  simulator (default sf)\n"
         "  --cycles C          measurement cycles per trial\n"
         "  --threads N         pool size (0 = default)\n"
         "  --metrics-out FILE  merged campaign metrics JSON\n"
         "  --csv FILE          per-cell summary CSV\n";
  return 2;
}

// Checked argv-to-number conversions: report the offending flag and token
// on stderr and fail instead of throwing (satellite of the campaign PR;
// see campaign/grid.hpp for the parsing contract).
bool parse_flag_u64(const char* flag, const char* v, std::uint64_t& out) {
  const std::optional<std::uint64_t> p = hbnet::campaign::parse_u64(v);
  if (!p) {
    std::cerr << flag << ": expected a non-negative integer, got '" << v
              << "'\n";
    return false;
  }
  out = *p;
  return true;
}

bool parse_flag_unsigned(const char* flag, const char* v, unsigned& out) {
  const std::optional<unsigned> p = hbnet::campaign::parse_unsigned(v);
  if (!p) {
    std::cerr << flag << ": expected a non-negative integer, got '" << v
              << "'\n";
    return false;
  }
  out = *p;
  return true;
}

bool parse_flag_double(const char* flag, const char* v, double& out) {
  const std::optional<double> p = hbnet::campaign::parse_double(v);
  if (!p) {
    std::cerr << flag << ": expected a finite number, got '" << v << "'\n";
    return false;
  }
  out = *p;
  return true;
}

/// Sentinel for "flag not given, keep the engine's default".
constexpr std::uint64_t kFlagUnset = ~std::uint64_t{0};

/// Shared flags for the telemetry-producing commands.
struct SimFlags {
  double rate = 0.05;
  std::uint64_t cycles = 400;
  std::uint64_t warmup = kFlagUnset;
  std::uint64_t drain = kFlagUnset;
  unsigned vcs = 6;
  unsigned flits = 4;
  unsigned shards = 0;   // 0 = one shard per pool worker
  bool sharded = false;  // --shards given: use the sharded engine
  std::uint64_t seed = 42;
  hbnet::TrafficPattern pattern = hbnet::TrafficPattern::kUniform;
  hbnet::VcPolicy policy = hbnet::VcPolicy::kSegmentDateline;
  bool valiant = false;
  // Wormhole static faults, derived from the seed exactly the way campaign
  // trials derive theirs (campaign::derived_fault_nodes / _links).
  unsigned faults = 0;
  unsigned link_faults = 0;
  std::string trace_out, metrics_out, links_csv;
  // Live telemetry: NDJSON stream / Prometheus exposition / TTY line.
  std::string stream_out, prom_out;
  std::uint64_t stream_interval_ms = 200;
  bool progress = false;
};

bool parse_sim_flags(int argc, char** argv, int first, SimFlags& f) {
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--valiant") {
      f.valiant = true;
    } else if (a == "--progress") {
      f.progress = true;
    } else if (a == "--stream-out") {
      const char* v = next("--stream-out");
      if (!v) return false;
      f.stream_out = v;
    } else if (a == "--prom-out") {
      const char* v = next("--prom-out");
      if (!v) return false;
      f.prom_out = v;
    } else if (a == "--stream-interval-ms") {
      const char* v = next("--stream-interval-ms");
      if (!v ||
          !parse_flag_u64("--stream-interval-ms", v, f.stream_interval_ms)) {
        return false;
      }
    } else if (a == "--rate") {
      const char* v = next("--rate");
      if (!v || !parse_flag_double("--rate", v, f.rate)) return false;
    } else if (a == "--cycles") {
      const char* v = next("--cycles");
      if (!v || !parse_flag_u64("--cycles", v, f.cycles)) return false;
    } else if (a == "--warmup") {
      const char* v = next("--warmup");
      if (!v || !parse_flag_u64("--warmup", v, f.warmup)) return false;
    } else if (a == "--drain") {
      const char* v = next("--drain");
      if (!v || !parse_flag_u64("--drain", v, f.drain)) return false;
    } else if (a == "--shards") {
      const char* v = next("--shards");
      if (!v || !parse_flag_unsigned("--shards", v, f.shards)) return false;
      f.sharded = true;
    } else if (a == "--vcs") {
      const char* v = next("--vcs");
      if (!v || !parse_flag_unsigned("--vcs", v, f.vcs)) return false;
    } else if (a == "--flits") {
      const char* v = next("--flits");
      if (!v || !parse_flag_unsigned("--flits", v, f.flits)) return false;
    } else if (a == "--faults") {
      const char* v = next("--faults");
      if (!v || !parse_flag_unsigned("--faults", v, f.faults)) return false;
    } else if (a == "--link-faults") {
      const char* v = next("--link-faults");
      if (!v || !parse_flag_unsigned("--link-faults", v, f.link_faults)) {
        return false;
      }
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (!v || !parse_flag_u64("--seed", v, f.seed)) return false;
    } else if (a == "--threads") {
      const char* v = next("--threads");
      unsigned threads = 0;
      if (!v || !parse_flag_unsigned("--threads", v, threads)) return false;
      hbnet::par::set_default_threads(threads);
    } else if (a == "--pattern") {
      const char* v = next("--pattern");
      if (!v) return false;
      const std::string p = v;
      if (p == "uniform") {
        f.pattern = hbnet::TrafficPattern::kUniform;
      } else if (p == "complement") {
        f.pattern = hbnet::TrafficPattern::kBitComplement;
      } else if (p == "reversal") {
        f.pattern = hbnet::TrafficPattern::kBitReversal;
      } else if (p == "shuffle") {
        f.pattern = hbnet::TrafficPattern::kShuffle;
      } else if (p == "hotspot") {
        f.pattern = hbnet::TrafficPattern::kHotspot;
      } else {
        std::cerr << "unknown pattern " << p << "\n";
        return false;
      }
    } else if (a == "--policy") {
      const char* v = next("--policy");
      if (!v) return false;
      const std::string p = v;
      if (p == "any") {
        f.policy = hbnet::VcPolicy::kAnyFree;
      } else if (p == "dateline") {
        f.policy = hbnet::VcPolicy::kDateline;
      } else if (p == "segment") {
        f.policy = hbnet::VcPolicy::kSegmentDateline;
      } else if (p == "adaptive") {
        f.policy = hbnet::VcPolicy::kFaultAdaptive;
      } else {
        std::cerr << "unknown policy " << p << "\n";
        return false;
      }
    } else if (a == "--trace-out") {
      const char* v = next("--trace-out");
      if (!v) return false;
      f.trace_out = v;
    } else if (a == "--metrics-out") {
      const char* v = next("--metrics-out");
      if (!v) return false;
      f.metrics_out = v;
    } else if (a == "--links-csv") {
      const char* v = next("--links-csv");
      if (!v) return false;
      f.links_csv = v;
    } else {
      std::cerr << "unknown option " << a << "\n";
      return false;
    }
  }
  return true;
}

/// Single rewriting status line on stderr, sampling a ProgressBoard at
/// ~10 Hz from its own thread. Shows unlabeled slots only (per-cell slots
/// would overflow one line); stop() renders the final state and moves to
/// a fresh line. Tools scope: wall-clock pacing is fine here.
class ProgressLine {
 public:
  explicit ProgressLine(const hbnet::obs::ProgressBoard& board)
      : board_(board), thread_([this] { run(); }) {}
  ~ProgressLine() { stop(); }
  ProgressLine(const ProgressLine&) = delete;
  ProgressLine& operator=(const ProgressLine&) = delete;

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    render();
    std::fputc('\n', stderr);
    std::fflush(stderr);
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopped_) {
      cv_.wait_for(lock, std::chrono::milliseconds(100),
                   [this] { return stopped_; });
      if (stopped_) break;
      lock.unlock();
      render();
      lock.lock();
    }
  }

  void render() {
    std::string line;
    for (const auto& [name, value] : board_.sample()) {
      if (name.find('{') != std::string::npos) continue;  // labeled slots
      if (!line.empty()) line += "  ";
      line += name + "=" + std::to_string(value);
    }
    // \r + erase-to-end keeps it a single rewriting line on a TTY.
    std::fprintf(stderr, "\r\033[K%s", line.c_str());
    std::fflush(stderr);
  }

  const hbnet::obs::ProgressBoard& board_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

/// The live-telemetry attachments of one run: the progress board the
/// engine writes into, plus (when requested) the Snapshotter exporting it
/// to files and/or the TTY status line. Everything here observes; the
/// engine result is byte-identical whether streaming is on or off.
struct Streaming {
  hbnet::obs::ProgressBoard board;
  std::unique_ptr<hbnet::obs::Snapshotter> snapshotter;
  std::unique_ptr<ProgressLine> line;

  ~Streaming() { stop(); }

  void start(const std::string& stream_out, const std::string& prom_out,
             std::uint64_t interval_ms, bool progress, const char* job) {
    if (!stream_out.empty() || !prom_out.empty()) {
      hbnet::obs::SnapshotterOptions opts;
      opts.stream_path = stream_out;
      opts.prom_path = !prom_out.empty()
                           ? prom_out
                           : (stream_out.empty() ? std::string()
                                                 : stream_out + ".prom");
      opts.interval_ms = interval_ms;
      opts.job = job;
      snapshotter =
          std::make_unique<hbnet::obs::Snapshotter>(board, std::move(opts));
      snapshotter->start();
    }
    if (progress) line = std::make_unique<ProgressLine>(board);
  }

  void start(const SimFlags& f, const char* job) {
    start(f.stream_out, f.prom_out, f.stream_interval_ms, f.progress, job);
  }

  /// The board when any surface is active, else nullptr -- so engines see
  /// a null progress pointer (and skip all slot work) on plain runs.
  [[nodiscard]] hbnet::obs::ProgressBoard* board_or_null() {
    return (snapshotter != nullptr || line != nullptr) ? &board : nullptr;
  }

  void stop() {
    if (line) line->stop();
    if (snapshotter) snapshotter->stop();
    line.reset();
    snapshotter.reset();
  }
};

/// Writes the sink's exports to the files requested by the flags.
/// Returns false on I/O failure.
bool export_sink(const hbnet::obs::Sink& sink, const SimFlags& f) {
  auto dump = [](const std::string& path, auto&& writer) {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot open " << path << "\n";
      return false;
    }
    writer(os);
    os << '\n';
    return true;
  };
  if (!f.trace_out.empty()) {
    if (sink.trace() == nullptr) return false;
    if (!dump(f.trace_out,
              [&](std::ostream& os) { sink.trace()->write_json(os); })) {
      return false;
    }
    std::cout << "trace:   " << f.trace_out << " (" << sink.trace()->size()
              << " events";
    if (sink.trace()->dropped() > 0) {
      std::cout << ", " << sink.trace()->dropped() << " dropped at capacity";
    }
    std::cout << ")\n";
  }
  if (!f.metrics_out.empty()) {
    if (!dump(f.metrics_out,
              [&](std::ostream& os) { sink.write_metrics_json(os); })) {
      return false;
    }
    std::cout << "metrics: " << f.metrics_out << " (" << sink.links().size()
              << " links)\n";
  }
  if (!f.links_csv.empty()) {
    if (!dump(f.links_csv,
              [&](std::ostream& os) { sink.write_links_csv(os); })) {
      return false;
    }
    std::cout << "links:   " << f.links_csv << "\n";
  }
  return true;
}

void print_node(const HyperButterfly& hb, HbNode v) {
  std::cout << "(" << v.cube << ",'" << hb.butterfly().label(v.bfly) << "')";
}

/// Mode switches for `analyze --exact-connectivity`.
struct ExactFlags {
  std::string checkpoint;
  std::string metrics_out;
  bool sparsify = false;   // run flows on Nagamochi-Ibaraki certificates
  bool implicit = false;   // generator-arithmetic adjacency, no CSR build
  bool orbits = true;      // cube-permutation target reduction
  std::uint64_t max_blocks = 0;  // 0 = run to completion
};

/// `analyze --exact-connectivity`: checkpointed Even-Tarjan sweep over the
/// HB(m,n) graph, single-source schedule (HB is a Cayley graph, hence
/// vertex transitive). Exit 0 only when the proven kappa equals the
/// Corollary-1 value m+4.
int run_exact_connectivity(const HyperButterfly& hb, const ExactFlags& ef,
                           const SimFlags& stream_flags) {
  const unsigned m = hb.cube_dimension();
  const unsigned n = hb.butterfly_dimension();
  hbnet::obs::MetricsRegistry metrics;
  hbnet::par::ThreadPool probe;

  // Adjacency mode: materialized CSR (default) or generator arithmetic
  // (--implicit, O(1) memory for the topology itself).
  std::optional<hbnet::Graph> g;
  std::optional<hbnet::CsrAdjacency> csr;
  std::optional<hbnet::HbImplicitAdjacency> implicit;
  const hbnet::AdjacencyProvider* adj = nullptr;
  if (ef.implicit) {
    adj = &implicit.emplace(m, n);
  } else {
    g.emplace(hb.to_graph());
    adj = &csr.emplace(*g);
  }
  std::cout << "exact connectivity HB(" << m << "," << n << ")  "
            << adj->num_nodes() << " nodes, " << adj->num_edges()
            << " edges  (" << probe.size() << " threads, adjacency "
            << adj->describe() << (ef.sparsify ? ", sparsify" : "")
            << (ef.orbits ? ", orbit schedule" : "") << ")\n";

  Streaming streaming;
  streaming.start(stream_flags, "connectivity");

  hbnet::SweepOptions opts;
  opts.vertex_transitive = true;  // Cayley graph: single-source is exact
  opts.sparsify = ef.sparsify;
  opts.max_blocks = ef.max_blocks;
  if (ef.orbits) {
    // Cube-bit permutations are automorphisms fixing vertex 0, so targets
    // collapse to one representative per cube popcount class.
    opts.orbit_rep = [m, n](hbnet::NodeId v) {
      return hbnet::hb_cube_orbit_representative(m, n, v);
    };
  }
  opts.checkpoint_path = ef.checkpoint;
  opts.metrics = &metrics;
  opts.progress = streaming.board_or_null();
  opts.on_block = [](const hbnet::SweepState& st,
                     std::uint32_t stage_blocks) {
    std::cout << "  stage " << st.stages_done << " block " << st.blocks_done
              << "/" << stage_blocks << "  bound " << st.bound << "  solves "
              << st.solves << "  pruned " << st.pruned << "\n";
  };
  hbnet::ConnectivitySweep sweep(*adj, opts);
  if (sweep.resumed()) {
    const hbnet::SweepState& st = sweep.state();
    std::cout << "  resumed from " << ef.checkpoint << " at stage "
              << st.stages_done << " block " << st.blocks_done << " (solves "
              << st.solves << ", pruned " << st.pruned << ")\n";
  } else if (!sweep.resume_note().empty()) {
    std::cout << "  checkpoint not resumed: " << sweep.resume_note() << "\n";
  }

  const auto start = std::chrono::steady_clock::now();
  hbnet::ExactConnectivityResult r = sweep.run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  streaming.stop();

  if (!ef.metrics_out.empty()) {
    std::ofstream os(ef.metrics_out);
    if (!os) {
      std::cerr << "cannot open " << ef.metrics_out << "\n";
      return 1;
    }
    metrics.write_json(os);
    os << '\n';
    std::cout << "  metrics: " << ef.metrics_out << "\n";
  }
  if (!ef.checkpoint.empty()) {
    std::cout << "  checkpoint: " << ef.checkpoint << "\n";
  }
  if (!r.complete) {
    std::cout << "  stopped before completion (resume with the same "
                 "--checkpoint file)\n";
    return 1;
  }
  std::cout << "  kappa = " << r.kappa << "  (" << r.stages << " source"
            << (r.stages == 1 ? "" : "s") << ", " << r.solves << " solves, "
            << r.pruned << " pruned, " << secs << " s)\n";
  if (r.kappa != hb.degree()) {
    std::cerr << "FAILED: kappa " << r.kappa << " != degree " << hb.degree()
              << " (Corollary 1)\n";
    return 1;
  }
  std::cout << "  Corollary 1 verified: kappa = m+4 = " << hb.degree()
            << "\n";
  return 0;
}

}  // namespace

int run(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string cmd = argv[1];
  const std::optional<unsigned> m_arg = hbnet::campaign::parse_unsigned(argv[2]);
  const std::optional<unsigned> n_arg = hbnet::campaign::parse_unsigned(argv[3]);
  if (!m_arg || !n_arg) {
    std::cerr << "m and n must be non-negative integers, got '" << argv[2]
              << "' '" << argv[3] << "'\n";
    return usage();
  }
  const unsigned m = *m_arg;
  const unsigned n = *n_arg;
  HyperButterfly hb(m, n);

  if (cmd == "info") {
    std::cout << "HB(" << m << "," << n << ")\n"
              << "  nodes:            " << hb.num_nodes() << "\n"
              << "  edges:            " << hb.num_edges() << "\n"
              << "  degree (regular): " << hb.degree() << "\n"
              << "  diameter formula: " << hb.diameter_formula()
              << "  (measured: m + floor(3n/2) = " << m + 3 * n / 2 << ")\n"
              << "  connectivity:     " << hb.degree()
              << "  (maximally fault tolerant)\n"
              << "  tolerates any " << hb.degree() - 1 << " node faults\n";
    return 0;
  }
  if (cmd == "label" && argc >= 5) {
    const std::optional<std::uint64_t> id_arg =
        hbnet::campaign::parse_u64(argv[4]);
    if (!id_arg) {
      std::cerr << "bad vertex id '" << argv[4] << "'\n";
      return usage();
    }
    HbIndex id = *id_arg;
    if (id >= hb.num_nodes()) {
      std::cerr << "id out of range\n";
      return 1;
    }
    HbNode v = hb.node_at(id);
    std::cout << "id " << id << " = ";
    print_node(hb, v);
    std::cout << "  [cube=" << v.cube << " word=" << v.bfly.word
              << " level=" << v.bfly.level
              << " PI=" << hb.butterfly().permutation_index(v.bfly)
              << " CI=" << hb.butterfly().complementation_index(v.bfly)
              << "]\n";
    return 0;
  }
  if ((cmd == "route" || cmd == "disjoint") && argc >= 6) {
    const std::optional<std::uint64_t> s_arg =
        hbnet::campaign::parse_u64(argv[4]);
    const std::optional<std::uint64_t> t_arg =
        hbnet::campaign::parse_u64(argv[5]);
    if (!s_arg || !t_arg) {
      std::cerr << "bad vertex ids '" << argv[4] << "' '" << argv[5]
                << "'\n";
      return usage();
    }
    HbIndex s = *s_arg, t = *t_arg;
    if (s >= hb.num_nodes() || t >= hb.num_nodes() || s == t) {
      std::cerr << "bad endpoints\n";
      return 1;
    }
    HbNode u = hb.node_at(s), v = hb.node_at(t);
    if (cmd == "route") {
      std::cout << "distance " << hb.distance(u, v) << "\n";
      for (const HbNode& w : hb.route(u, v)) {
        print_node(hb, w);
        std::cout << " ";
      }
      std::cout << "\n";
    } else {
      auto family = hb.disjoint_paths(u, v);
      std::cout << family.size() << " internally disjoint paths:\n";
      for (const auto& p : family) {
        std::cout << "  [" << p.size() - 1 << " hops] ";
        for (const HbNode& w : p) {
          print_node(hb, w);
          std::cout << " ";
        }
        std::cout << "\n";
      }
    }
    return 0;
  }
  if (cmd == "dot" || cmd == "edges") {
    std::ofstream file;
    std::ostream* os = &std::cout;
    if (argc >= 5) {
      file.open(argv[4]);
      if (!file) {
        std::cerr << "cannot open " << argv[4] << "\n";
        return 1;
      }
      os = &file;
    }
    hbnet::Graph g = hb.to_graph();
    if (cmd == "dot") {
      hbnet::DotOptions opts;
      opts.graph_name = "HB_" + std::to_string(m) + "_" + std::to_string(n);
      for (HbIndex id = 0; id < hb.num_nodes(); ++id) {
        HbNode v = hb.node_at(id);
        opts.labels.push_back(std::to_string(v.cube) + "," +
                              hb.butterfly().label(v.bfly));
      }
      write_dot(*os, g, opts);
    } else {
      write_edge_list(*os, g);
    }
    return 0;
  }
  if (cmd == "cuts") {
    for (const auto& cut : hbnet::hb_dimension_cuts(hb)) {
      std::cout << "  " << cut.name << ": width " << cut.width
                << (cut.balanced ? " (balanced)" : " (unbalanced)") << "\n";
    }
    std::uint64_t ub =
        hbnet::sampled_bisection_upper_bound(hb.to_graph(), 3, 11);
    std::cout << "  sampled bisection upper bound: " << ub
              << "  => Thompson VLSI area lower bound ~ "
              << hbnet::thompson_area_lower_bound(ub) << " grid units\n";
    return 0;
  }
  if (cmd == "election") {
    auto flood = hbnet::flood_max_election(hb.to_graph());
    auto structured = hbnet::hb_structured_election(hb);
    std::cout << "flood-max:  leader " << flood.leader << ", "
              << flood.run.rounds << " rounds, " << flood.run.messages
              << " messages\n"
              << "structured: leader " << structured.leader << ", "
              << structured.run.rounds << " rounds, "
              << structured.run.messages << " messages\n";
    return 0;
  }
  if (cmd == "analyze") {
    bool audit = false;
    bool exact = false;
    ExactFlags exact_flags;
    SimFlags stream_flags;
    for (int i = 4; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--threads" && i + 1 < argc) {
        unsigned threads = 0;
        if (!parse_flag_unsigned("--threads", argv[++i], threads)) {
          return usage();
        }
        hbnet::par::set_default_threads(threads);
      } else if (a == "--audit") {
        audit = true;
      } else if (a == "--exact-connectivity") {
        exact = true;
      } else if (a == "--sparsify") {
        exact_flags.sparsify = true;
      } else if (a == "--implicit") {
        exact_flags.implicit = true;
      } else if (a == "--no-orbits") {
        exact_flags.orbits = false;
      } else if (a == "--max-blocks" && i + 1 < argc) {
        if (!parse_flag_u64("--max-blocks", argv[++i],
                            exact_flags.max_blocks)) {
          return usage();
        }
      } else if (a == "--progress") {
        stream_flags.progress = true;
      } else if (a == "--checkpoint" && i + 1 < argc) {
        exact_flags.checkpoint = argv[++i];
      } else if (a == "--metrics-out" && i + 1 < argc) {
        exact_flags.metrics_out = argv[++i];
      } else if (a == "--stream-out" && i + 1 < argc) {
        stream_flags.stream_out = argv[++i];
      } else if (a == "--prom-out" && i + 1 < argc) {
        stream_flags.prom_out = argv[++i];
      } else if (a == "--stream-interval-ms" && i + 1 < argc) {
        if (!parse_flag_u64("--stream-interval-ms", argv[++i],
                            stream_flags.stream_interval_ms)) {
          return usage();
        }
      } else {
        std::cerr << "unknown option " << a << "\n";
        return usage();
      }
    }
    if (exact) {
      return run_exact_connectivity(hb, exact_flags, stream_flags);
    }
    hbnet::par::ThreadPool probe;
    hbnet::Graph g = hb.to_graph();
    std::cout << "analyze HB(" << m << "," << n << ")  (" << probe.size()
              << " threads)\n"
              << "  nodes / edges:     " << g.num_nodes() << " / "
              << g.num_edges() << "\n"
              << "  diameter:          " << hbnet::parallel_diameter(g)
              << "  (formula " << hb.diameter_formula() << ")\n"
              << "  average distance:  "
              << hbnet::parallel_average_distance(g) << "\n"
              << "  vertex connectivity: " << hbnet::vertex_connectivity(g)
              << "  (degree " << hb.degree() << ")\n"
              << "  edge connectivity:   " << hbnet::edge_connectivity(g)
              << "\n";
    if (audit) {
      hbnet::DisjointPathsAudit a = hbnet::audit_disjoint_paths(hb);
      std::cout << "  Theorem-5 audit:   " << a.pairs_checked << " pairs, "
                << (a.ok ? "all families disjoint" : "FAILED: " + a.error)
                << "\n";
      if (!a.ok) return 1;
    }
    return 0;
  }
  if (cmd == "wormhole" || cmd == "sim") {
    SimFlags flags;
    if (!parse_sim_flags(argc, argv, 4, flags)) return usage();
    hbnet::obs::Sink sink;
    if (!flags.trace_out.empty()) sink.enable_trace();

    if (cmd == "wormhole") {
      auto topo = hbnet::make_hyper_butterfly_sim(m, n);
      hbnet::WormholeConfig cfg;
      cfg.vcs = flags.vcs;
      cfg.flits_per_packet = flags.flits;
      cfg.injection_rate = flags.rate;
      cfg.measure_cycles = flags.cycles;
      if (flags.warmup != kFlagUnset) cfg.warmup_cycles = flags.warmup;
      if (flags.drain != kFlagUnset) cfg.drain_cycles = flags.drain;
      cfg.seed = flags.seed;
      cfg.pattern = flags.pattern;
      cfg.policy = flags.policy;
      // Static faults, derived from the run seed the same way campaign
      // trials derive theirs: node ids from the fault stream (stream 1 of
      // the splittable counter), link picks from an independent stream.
      hbnet::WormholeFaults wf;
      if (flags.faults > 0 || flags.link_faults > 0) {
        namespace camp = hbnet::campaign;
        const std::uint64_t fault_seed = camp::split_seed(flags.seed, 0, 1);
        if (flags.faults > 0) {
          if (flags.faults >= topo->num_nodes()) {
            std::cerr << "--faults: must be < num nodes ("
                      << topo->num_nodes() << ")\n";
            return 1;
          }
          wf.nodes.assign(topo->num_nodes(), 0);
          for (const std::uint32_t v :
               camp::derived_fault_nodes(fault_seed, topo->num_nodes(),
                                         flags.faults)) {
            wf.nodes[v] = 1;
          }
        }
        if (flags.link_faults > 0) {
          if (flags.link_faults >= topo->num_nodes()) {
            std::cerr << "--link-faults: must be < num nodes ("
                      << topo->num_nodes() << ")\n";
            return 1;
          }
          wf.links =
              camp::derived_fault_links(fault_seed, *topo, flags.link_faults);
        }
        if (cfg.policy != hbnet::VcPolicy::kFaultAdaptive) {
          std::cerr << "--faults/--link-faults need --policy adaptive (vcs"
                       " >= "
                    << hbnet::vc_classes(hbnet::VcPolicy::kFaultAdaptive)
                    << ")\n";
          return 1;
        }
      }
      Streaming streaming;
      streaming.start(flags, "wormhole");
      // The butterfly level coordinate is node id mod n: the ring arity
      // the dateline VC classes are computed from.
      hbnet::WormholeStats s =
          hbnet::run_wormhole(*topo, cfg, n, wf.any() ? &wf : nullptr, &sink,
                              streaming.board_or_null());
      streaming.stop();
      std::cout << "wormhole HB(" << m << "," << n << ") "
                << topo->num_nodes() << " nodes, rate " << flags.rate
                << ", " << s.cycles << " cycles"
                << (s.deadlocked ? " [DEADLOCK]" : "") << "\n  "
                << s.packets.summary() << "\n  p50="
                << s.packets.latency_percentile(0.5)
                << " max=" << s.packets.max_latency() << "\n";
      if (wf.any()) {
        std::cout << "  faults: " << flags.faults << " nodes, "
                  << flags.link_faults << " links; misroutes=" << s.misroutes
                  << " escape_hops=" << s.escape_hops
                  << " unroutable=" << s.unroutable << "\n";
      }
      if (!export_sink(sink, flags)) return 1;
      return s.deadlocked ? 1 : 0;
    }

    hbnet::SimConfig cfg;
    cfg.injection_rate = flags.rate;
    cfg.measure_cycles = flags.cycles;
    if (flags.warmup != kFlagUnset) cfg.warmup_cycles = flags.warmup;
    if (flags.drain != kFlagUnset) cfg.drain_cycles = flags.drain;
    cfg.seed = flags.seed;
    cfg.pattern = flags.pattern;
    cfg.routing = flags.valiant ? hbnet::RoutingMode::kValiant
                                : hbnet::RoutingMode::kNative;
    // Telemetry aggregation is pay-for-what-you-watch: skip it entirely
    // when nothing will be exported (at 10^6+ nodes the link/occupancy
    // tables dominate an otherwise interactive run).
    hbnet::obs::Sink* sink_ptr = !flags.trace_out.empty() ||
                                         !flags.metrics_out.empty() ||
                                         !flags.links_csv.empty()
                                     ? &sink
                                     : nullptr;
    Streaming streaming;
    streaming.start(flags, "sim");
    hbnet::SimStats s;
    if (flags.sharded) {
      s = hbnet::run_simulation_sharded(hb, cfg, flags.shards, 0, sink_ptr,
                                        streaming.board_or_null());
    } else {
      auto topo = hbnet::make_hyper_butterfly_sim(m, n);
      s = hbnet::run_simulation(*topo, cfg, {}, sink_ptr,
                                streaming.board_or_null());
    }
    streaming.stop();
    std::cout << "sim HB(" << m << "," << n << ") " << hb.num_nodes()
              << " nodes, rate " << flags.rate << "\n  " << s.summary()
              << "\n  p50=" << s.latency_percentile(0.5)
              << " max=" << s.max_latency() << "\n";
    if (!export_sink(sink, flags)) return 1;
    return 0;
  }
  if (cmd == "campaign") {
    namespace camp = hbnet::campaign;
    camp::CampaignConfig cfg;
    cfg.m = m;
    cfg.n = n;
    std::string metrics_out, csv_out;
    SimFlags stream_flags;
    for (int i = 4; i < argc; ++i) {
      const std::string a = argv[i];
      // Value-less flags come before the "needs a value" check.
      if (a == "--progress") {
        stream_flags.progress = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::cerr << a << " needs a value\n";
        return usage();
      }
      const char* v = argv[++i];
      if (a == "--models") {
        cfg.models.clear();
        std::string_view rest = v;
        while (true) {
          const std::size_t comma = rest.find(',');
          const std::string_view piece = rest.substr(0, comma);
          const std::optional<camp::FaultModel> model =
              camp::fault_model_from_name(piece);
          if (!model) {
            std::cerr << "--models: unknown fault model '" << piece
                      << "' (random|adversarial|events|links)\n";
            return usage();
          }
          cfg.models.push_back(*model);
          if (comma == std::string_view::npos) break;
          rest.remove_prefix(comma + 1);
        }
      } else if (a == "--rates") {
        const std::optional<std::vector<double>> rates =
            camp::parse_double_list(v);
        if (!rates) {
          std::cerr << "--rates: expected comma-separated numbers, got '"
                    << v << "'\n";
          return usage();
        }
        cfg.rates = *rates;
      } else if (a == "--faults") {
        const std::optional<std::vector<unsigned>> faults =
            camp::parse_unsigned_list(v);
        if (!faults) {
          std::cerr << "--faults: expected comma-separated integers, got '"
                    << v << "'\n";
          return usage();
        }
        cfg.fault_counts = *faults;
      } else if (a == "--trials") {
        if (!parse_flag_unsigned("--trials", v, cfg.trials)) return usage();
      } else if (a == "--seed") {
        if (!parse_flag_u64("--seed", v, cfg.seed)) return usage();
      } else if (a == "--engine") {
        const std::optional<camp::Engine> engine = camp::engine_from_name(v);
        if (!engine) {
          std::cerr << "--engine: expected sf|wormhole, got '" << v << "'\n";
          return usage();
        }
        cfg.engine = *engine;
      } else if (a == "--cycles") {
        std::uint64_t cycles = 0;
        if (!parse_flag_u64("--cycles", v, cycles)) return usage();
        cfg.sim.measure_cycles = cycles;
        cfg.wormhole.measure_cycles = cycles;
      } else if (a == "--threads") {
        if (!parse_flag_unsigned("--threads", v, cfg.threads)) return usage();
      } else if (a == "--metrics-out") {
        metrics_out = v;
      } else if (a == "--csv") {
        csv_out = v;
      } else if (a == "--stream-out") {
        stream_flags.stream_out = v;
      } else if (a == "--prom-out") {
        stream_flags.prom_out = v;
      } else if (a == "--stream-interval-ms") {
        if (!parse_flag_u64("--stream-interval-ms", v,
                            stream_flags.stream_interval_ms)) {
          return usage();
        }
      } else {
        std::cerr << "unknown option " << a << "\n";
        return usage();
      }
    }
    Streaming streaming;
    streaming.start(stream_flags, "campaign");
    const camp::CampaignResult result =
        camp::run_campaign(cfg, streaming.board_or_null());
    streaming.stop();
    std::cout << "campaign HB(" << m << "," << n << ") engine "
              << camp::engine_name(cfg.engine) << ", " << result.trials.size()
              << " trials over " << result.cells.size() << " cells (seed "
              << cfg.seed << ")\n";
    camp::write_campaign_table(std::cout, result);
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out);
      if (!os) {
        std::cerr << "cannot open " << metrics_out << "\n";
        return 1;
      }
      result.metrics.write_json(os);
      os << '\n';
      std::cout << "metrics: " << metrics_out << "\n";
    }
    if (!csv_out.empty()) {
      std::ofstream os(csv_out);
      if (!os) {
        std::cerr << "cannot open " << csv_out << "\n";
        return 1;
      }
      camp::write_campaign_csv(os, result);
      std::cout << "csv:     " << csv_out << "\n";
    }
    return 0;
  }
  return usage();
}

int main(int argc, char** argv) {
  // Postmortem triage: an HBNET_CHECK failure or fatal signal dumps the
  // flight recorder's recent engine events (trial/sweep/checkpoint
  // context) to stderr before the process dies.
  hbnet::obs::FlightRecorder::install_crash_dump();
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
