#!/usr/bin/env sh
# Sharded-engine determinism contract, enforced end to end through the CLI:
# `hbnet_cli sim --shards` must produce byte-identical results for every
# --threads x --shards combination. Metrics JSON, the per-link CSV, and the
# stdout summary are compared byte-for-byte across threads {1, 2, 8} x
# shards {1, 4} against the single-threaded single-shard baseline, for both
# the native and Valiant routing modes.
#
# Usage: test_sim_determinism.sh <path-to-hbnet_cli>
set -eu

cli=$1
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

run_sim() {
  threads=$1
  shards=$2
  tag=$3
  shift 3
  "$cli" sim 2 4 --cycles 200 --rate 0.08 \
    --threads "$threads" --shards "$shards" \
    --metrics-out "$work/m$tag.json" --links-csv "$work/l$tag.csv" "$@" \
    2>/dev/null | grep -v -e '^metrics:' -e '^links:' > "$work/t$tag.txt"
}

for mode in "" "--valiant"; do
  suffix=${mode:+v}
  run_sim 1 1 "base$suffix" $mode
  for threads in 1 2 8; do
    for shards in 1 4; do
      tag="$threads-$shards$suffix"
      run_sim "$threads" "$shards" "$tag" $mode
      for kind in m l t; do
        ext=json; [ "$kind" = l ] && ext=csv; [ "$kind" = t ] && ext=txt
        if ! cmp -s "$work/${kind}base$suffix.$ext" "$work/$kind$tag.$ext"; then
          echo "FAIL: sim $ext differs at --threads $threads" \
               "--shards $shards ${mode:-native}" >&2
          exit 1
        fi
      done
    done
  done
done

# Artifact sanity: the run actually simulated something.
grep -q '"sim.delivered"' "$work/mbase.json" || {
  echo "FAIL: metrics JSON missing sim.delivered" >&2; exit 1; }
grep -q ',' "$work/lbase.csv" || {
  echo "FAIL: links CSV is empty" >&2; exit 1; }

echo "sharded sim results are byte-identical across threads x shards"
