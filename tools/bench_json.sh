#!/usr/bin/env bash
# Regenerates the machine-readable benchmark artifacts referenced by
# docs/performance.md:
#
#   BENCH_wormhole.json      -- BM_Wormhole + BM_WormholeHeavyLoad (the
#                               saturated-load datapath benchmark, sink
#                               off/on)
#   BENCH_connectivity.json  -- BM_*Connectivity* including the 1/2/4-thread
#                               scaling runs of the parallel analysis engine
#                               and BM_VertexConnectivityEvenTarjan (the
#                               single-source checkpointed sweep engine on
#                               HB(2,3) and HB(3,3))
#   BENCH_campaign.json      -- BM_Campaign/1|2|4: the fault-injection
#                               campaign engine sweeping one fixed grid at
#                               1, 2, and 4 pool threads
#   BENCH_simulation.json    -- BM_SimSerialHb28 vs BM_SimShardedHb28/1|2|4
#                               (serial vs sharded datapath at equal node
#                               count) and BM_SimShardedMillion/0|1|2 (the
#                               1.8M-node HB(3,14) run under uniform,
#                               shuffle, and hotspot traffic)
#
# Usage: tools/bench_json.sh [build-dir] [output-dir]
# Defaults: build-dir = build, output-dir = current directory.
# Also available as the CMake target `bench_json` (writes into the build
# directory).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"

for bin in bench_wormhole bench_connectivity bench_campaign \
           bench_simulation; do
  if [[ ! -x "${BUILD_DIR}/bench/${bin}" ]]; then
    echo "error: ${BUILD_DIR}/bench/${bin} not built" \
         "(cmake --build ${BUILD_DIR} --target ${bin})" >&2
    exit 1
  fi
done

"${BUILD_DIR}/bench/bench_wormhole" \
    --benchmark_filter='BM_Wormhole' \
    --benchmark_out="${OUT_DIR}/BENCH_wormhole.json" \
    --benchmark_out_format=json

"${BUILD_DIR}/bench/bench_connectivity" \
    --benchmark_filter='BM_.*Connectivity|BM_MaxDisjointPathsFlow' \
    --benchmark_out="${OUT_DIR}/BENCH_connectivity.json" \
    --benchmark_out_format=json

"${BUILD_DIR}/bench/bench_campaign" \
    --benchmark_filter='BM_Campaign' \
    --benchmark_out="${OUT_DIR}/BENCH_campaign.json" \
    --benchmark_out_format=json

"${BUILD_DIR}/bench/bench_simulation" \
    --benchmark_filter='BM_Sim(Serial|Sharded)' \
    --benchmark_out="${OUT_DIR}/BENCH_simulation.json" \
    --benchmark_out_format=json

# Stamp the *repo* build type into each context. Google Benchmark's own
# context.library_build_type reports how the benchmark support library was
# compiled (a system package, often debug), not how the hbnet tree was --
# tools/bench_gate.py gates on hbnet_build_type when present.
HBNET_BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
                    "${BUILD_DIR}/CMakeCache.txt" | tr '[:upper:]' '[:lower:]')"
python3 - "${OUT_DIR}" "${HBNET_BUILD_TYPE:-unknown}" <<'EOF'
import json, pathlib, sys
out_dir, build_type = pathlib.Path(sys.argv[1]), sys.argv[2]
for path in sorted(out_dir.glob("BENCH_*.json")):
    doc = json.loads(path.read_text(encoding="utf-8"))
    doc.setdefault("context", {})["hbnet_build_type"] = build_type
    path.write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
EOF

echo "wrote ${OUT_DIR}/BENCH_wormhole.json," \
     "${OUT_DIR}/BENCH_connectivity.json," \
     "${OUT_DIR}/BENCH_campaign.json and" \
     "${OUT_DIR}/BENCH_simulation.json" \
     "(hbnet_build_type=${HBNET_BUILD_TYPE:-unknown})"
