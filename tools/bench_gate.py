#!/usr/bin/env python3
"""Benchmark regression gate for the committed BENCH_*.json baselines.

Compares a fresh ``tools/bench_json.sh`` run against the baselines committed
at the repository root and fails (exit 1) when any benchmark present in both
regresses by more than the threshold (default 10% on ``real_time``).

Usage:
    tools/bench_json.sh build fresh-bench/
    python3 tools/bench_gate.py fresh-bench/ [baseline-dir] [--threshold PCT]
    python3 tools/bench_gate.py fresh-bench/ --write-baseline

Rules:
  * Only ``run_type == "iteration"`` entries are compared (aggregates such
    as mean/median/stddev are derived values and would double-count).
  * ``real_time`` values are normalized through ``time_unit`` before
    comparison, so a baseline in ms gates a fresh run reported in ns.
  * A baseline file missing from the fresh run (or vice versa), and a
    benchmark name present on only one side, are WARNINGS, not failures --
    new benchmarks land without a baseline until the next re-baseline.
  * Improvements are reported but never gate.
  * User counters (``state.counters`` -- every numeric key that is not one
    of the standard benchmark fields, e.g. the wormhole fault columns
    delivered/misroutes/unroutable) are tracked: a counter that drifts,
    appears, or disappears between baseline and fresh run is a WARNING.
    Counters describe the workload, not the machine, so they never gate --
    but silent drift would make the timing comparison meaningless.

An unreadable, empty, or malformed JSON file on either side is a warning
(the file is skipped), never a stack trace: benchmark history is allowed to
be missing -- on a fresh clone, after a filter change, or before the first
re-baseline -- and the gate must degrade to "nothing to compare" instead of
crashing CI.

Re-baselining (see docs/performance.md): when a deliberate change moves a
benchmark past the threshold, regenerate the artifacts on the reference
machine with ``tools/bench_json.sh build fresh-bench`` and promote them with
``--write-baseline`` (copies fresh-bench/BENCH_*.json over the committed
baselines), then commit the updated BENCH_*.json alongside the change that
explains them.
"""

import argparse
import json
import pathlib
import shutil
import sys

# Factors to nanoseconds; benchmark JSON time_unit values.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Standard per-benchmark fields of Google Benchmark's JSON schema. Any
# *other* numeric key is a user counter (state.counters) and is tracked as
# workload metadata alongside the timing.
_STANDARD_KEYS = {
    "name", "run_name", "run_type", "iterations", "real_time", "cpu_time",
    "time_unit", "repetitions", "threads", "family_index",
    "per_family_instance_index", "repetition_index", "aggregate_name",
    "aggregate_unit",
}


def load_iterations(path, warnings):
    """name -> (real_time ns, counters) for every iteration entry of a file.

    ``counters`` maps each non-standard numeric key (a state.counters
    entry) to its float value. An unreadable or malformed file appends a
    warning and yields an empty mapping instead of raising: missing/corrupt
    benchmark history must degrade the gate, not crash it.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as err:
        warnings.append(f"{path.name}: unreadable ({err.strerror or err}); "
                        "skipped")
        return {}
    except json.JSONDecodeError as err:
        warnings.append(f"{path.name}: not valid benchmark JSON ({err.msg} "
                        f"at line {err.lineno}); skipped")
        return {}
    if not isinstance(doc, dict) or not isinstance(doc.get("benchmarks"), list):
        warnings.append(f"{path.name}: no 'benchmarks' array "
                        "(empty or truncated run?); skipped")
        return {}
    out = {}
    for bench in doc["benchmarks"]:
        if not isinstance(bench, dict):
            continue
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench.get("name")
        real = bench.get("real_time")
        unit = bench.get("time_unit", "ns")
        if name is None or real is None:
            continue
        counters = {
            key: float(value)
            for key, value in bench.items()
            if key not in _STANDARD_KEYS
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
        }
        out[name] = (float(real) * _UNIT_NS.get(unit, 1.0), counters)
    return out


def check_build_type(path, side, warnings):
    """Warn when a benchmark file was produced by a non-release build.

    ``context.hbnet_build_type`` (stamped by tools/bench_json.sh from the
    build tree's CMakeCache) is authoritative; Google Benchmark's own
    ``context.library_build_type`` -- how the *benchmark support library*
    was compiled, often a debug system package -- is the fallback for
    artifacts predating the stamp. A "debug" baseline makes every
    comparison meaningless (debug timings are several times slower and
    gate nothing real), so the mismatch is surfaced loudly -- but stays a
    warning: the gate still runs on what it has.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return  # load_iterations already reported the file itself
    if not isinstance(doc, dict):
        return
    context = doc.get("context", {})
    build_type = context.get("hbnet_build_type",
                             context.get("library_build_type"))
    if build_type is not None and build_type != "release":
        warnings.append(
            f"{path.name}: {side} was produced by a '{build_type}' build, "
            "not 'release' -- regenerate with tools/bench_json.sh from a "
            "-DCMAKE_BUILD_TYPE=Release tree")


def fmt_ns(ns):
    for unit, factor in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= factor:
            return f"{ns / factor:.3g} {unit}"
    return f"{ns:.3g} ns"


def main(argv):
    parser = argparse.ArgumentParser(
        description="Gate fresh bench_json.sh output against committed "
        "BENCH_*.json baselines."
    )
    parser.add_argument("fresh_dir", type=pathlib.Path,
                        help="directory holding the fresh BENCH_*.json run")
    parser.add_argument("baseline_dir", type=pathlib.Path, nargs="?",
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="directory holding the committed baselines "
                        "(default: repository root)")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="max tolerated real_time regression in percent "
                        "(default: 10)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="promote the fresh BENCH_*.json to the baseline "
                        "directory (regenerating the committed baselines) "
                        "instead of gating against them")
    args = parser.parse_args(argv)

    if not args.fresh_dir.is_dir():
        print(f"bench-gate: fresh directory {args.fresh_dir} does not exist "
              "-- run tools/bench_json.sh first; nothing to compare",
              file=sys.stderr)
        return 2

    fresh_paths = sorted(args.fresh_dir.glob("BENCH_*.json"))

    if args.write_baseline:
        if not fresh_paths:
            print(f"bench-gate: no BENCH_*.json in {args.fresh_dir} to "
                  "promote; run tools/bench_json.sh first", file=sys.stderr)
            return 2
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for path in fresh_paths:
            shutil.copyfile(path, args.baseline_dir / path.name)
            print(f"bench-gate: wrote {args.baseline_dir / path.name}")
        print(f"bench-gate: promoted {len(fresh_paths)} baseline file(s); "
              "review and commit them with the change that explains them")
        return 0

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        # Not an error: a tree with no committed history yet (or a pruned
        # baseline set) simply has nothing to gate against.
        print(f"bench-gate: warning: no BENCH_*.json baselines in "
              f"{args.baseline_dir}; nothing to gate against (promote a "
              "reference run with --write-baseline)", file=sys.stderr)
        return 0

    failures = []
    warnings = []
    compared = 0

    fresh_files = {p.name for p in fresh_paths}
    for extra in sorted(fresh_files - {p.name for p in baselines}):
        warnings.append(f"{extra}: fresh file has no committed baseline")

    for base_path in baselines:
        fresh_path = args.fresh_dir / base_path.name
        if not fresh_path.is_file():
            warnings.append(f"{base_path.name}: no fresh run to compare")
            continue
        check_build_type(base_path, "baseline", warnings)
        check_build_type(fresh_path, "fresh run", warnings)
        base = load_iterations(base_path, warnings)
        fresh = load_iterations(fresh_path, warnings)
        for name in sorted(set(base) - set(fresh)):
            warnings.append(f"{base_path.name}: '{name}' missing from fresh "
                            "run (filter change?)")
        for name in sorted(set(fresh) - set(base)):
            warnings.append(f"{base_path.name}: '{name}' is new -- no "
                            "baseline yet")
        for name in sorted(set(base) & set(fresh)):
            compared += 1
            base_ns, base_counters = base[name]
            fresh_ns, fresh_counters = fresh[name]
            delta = 100.0 * (fresh_ns / base_ns - 1.0)
            line = (f"{base_path.name}: {name}: "
                    f"{fmt_ns(base_ns)} -> {fmt_ns(fresh_ns)} "
                    f"({delta:+.1f}%)")
            if delta > args.threshold:
                failures.append(line)
            else:
                print(f"ok    {line}")
            # Counter drift: workload metadata, warn-only.
            for key in sorted(set(base_counters) - set(fresh_counters)):
                warnings.append(f"{base_path.name}: {name}: counter '{key}' "
                                "missing from fresh run")
            for key in sorted(set(fresh_counters) - set(base_counters)):
                warnings.append(f"{base_path.name}: {name}: counter '{key}' "
                                "is new -- no baseline yet")
            for key in sorted(set(base_counters) & set(fresh_counters)):
                if base_counters[key] != fresh_counters[key]:
                    warnings.append(
                        f"{base_path.name}: {name}: counter '{key}' drifted "
                        f"{base_counters[key]:g} -> {fresh_counters[key]:g}")

    for w in warnings:
        print(f"warn  {w}")
    for f in failures:
        print(f"FAIL  {f}")

    print(f"bench-gate: {compared} compared, {len(failures)} regressions "
          f"(> {args.threshold:g}%), {len(warnings)} warnings")
    if failures:
        print("bench-gate: deliberate? re-baseline with "
              "'tools/bench_json.sh build .' and commit the new BENCH_*.json "
              "(docs/performance.md).")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
