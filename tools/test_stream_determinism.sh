#!/usr/bin/env sh
# Live-telemetry observer contract, enforced end to end through the CLI:
# attaching --stream-out / --progress must not change a single result byte.
# Campaign metrics JSON, per-cell CSV, and the stdout table, plus the
# exact-connectivity checkpoint, are compared byte-for-byte between plain
# and streaming runs at 1, 2, and 8 threads; the NDJSON stream and the
# Prometheus exposition themselves only get sanity checks (they carry
# wall-clock timestamps, so *their* bytes are allowed to differ).
#
# Usage: test_stream_determinism.sh <path-to-hbnet_cli>
set -eu

cli=$1
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

run_campaign() {
  threads=$1
  tag=$2
  shift 2
  # The "metrics:"/"csv:" confirmation lines echo per-tag paths; drop them
  # before comparing the table. --progress writes to stderr only.
  "$cli" campaign 1 3 \
    --models random,events --rates 0.05 --faults 0,2 \
    --trials 2 --seed 11 --cycles 100 --threads "$threads" \
    --metrics-out "$work/m$tag.json" --csv "$work/c$tag.csv" "$@" \
    2>/dev/null | grep -v -e '^metrics:' -e '^csv:' > "$work/t$tag.txt"
}

run_campaign 1 plain1
for threads in 1 2 8; do
  run_campaign "$threads" "s$threads" \
    --stream-out "$work/s$threads.ndjson" --progress
  for kind in m c t; do
    ext=json; [ "$kind" = c ] && ext=csv; [ "$kind" = t ] && ext=txt
    if ! cmp -s "$work/${kind}plain1.$ext" "$work/${kind}s$threads.$ext"; then
      echo "FAIL: campaign $ext differs with --stream-out/--progress" \
           "at --threads $threads" >&2
      exit 1
    fi
  done
done

# Stream artifact sanity: every line is a JSON object, the exposition uses
# the hbnet_ namespace, and the atomic-rename tmp file is gone.
head -c 1 "$work/s2.ndjson" | grep -q '{' || {
  echo "FAIL: NDJSON stream does not start with '{'" >&2; exit 1; }
grep -q '"job":"campaign"' "$work/s2.ndjson" || {
  echo "FAIL: NDJSON stream missing job field" >&2; exit 1; }
grep -q '^hbnet_campaign_trials_total' "$work/s2.ndjson.prom" || {
  echo "FAIL: Prometheus exposition missing hbnet_ metrics" >&2; exit 1; }
[ ! -e "$work/s2.ndjson.prom.tmp" ] || {
  echo "FAIL: leftover .tmp from the atomic prom rename" >&2; exit 1; }

# Exact connectivity: the checkpoint bytes are part of the determinism
# contract and must not notice the observer either.
"$cli" analyze 2 3 --exact-connectivity \
    --checkpoint "$work/plain.ckpt" > /dev/null
"$cli" analyze 2 3 --exact-connectivity \
    --checkpoint "$work/stream.ckpt" \
    --stream-out "$work/conn.ndjson" --progress > /dev/null 2>&1
if ! cmp -s "$work/plain.ckpt" "$work/stream.ckpt"; then
  echo "FAIL: connectivity checkpoint differs under --stream-out" >&2
  exit 1
fi
grep -q '"connectivity.bound":6' "$work/conn.ndjson" || {
  echo "FAIL: connectivity stream never reported the bound" >&2; exit 1; }

echo "streaming surfaces are byte-transparent across thread counts"
